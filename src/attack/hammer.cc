#include "attack/hammer.hh"

#include <stdexcept>

namespace anvil::attack {

Hammer::Hammer(mem::MemorySystem &mem, Pid pid) : mem_(mem), pid_(pid)
{
}

HammerResult
Hammer::run(Tick max_duration)
{
    const dram::DramSystem &dram = mem_.dram();
    const std::size_t base_flips = dram.flips().size();
    const Tick start = mem_.now();

    HammerResult result;
    while (mem_.now() - start < max_duration) {
        iteration();
        ++result.iterations;
        if (dram.flips().size() > base_flips) {
            result.flipped = true;
            break;
        }
    }

    result.aggressor_accesses =
        result.iterations * aggressor_accesses_per_iteration();
    if (result.flipped) {
        result.duration = dram.flips()[base_flips].time - start;
        result.flips.assign(dram.flips().begin() +
                                static_cast<std::ptrdiff_t>(base_flips),
                            dram.flips().end());
    } else {
        result.duration = mem_.now() - start;
    }
    return result;
}

ClflushDoubleSided::ClflushDoubleSided(mem::MemorySystem &mem, Pid pid,
                                       const DoubleSidedTarget &target,
                                       AccessType type)
    : Hammer(mem, pid),
      a0_(target.low_aggressor_va),
      a1_(target.high_aggressor_va),
      type_(type)
{
}

void
ClflushDoubleSided::iteration()
{
    // Figure 1a: access both aggressors, then flush both so the next
    // iteration's accesses reach DRAM.
    mem_.access(pid_, a0_, type_);
    mem_.access(pid_, a1_, type_);
    mem_.clflush(pid_, a0_);
    mem_.clflush(pid_, a1_);
}

ClflushSingleSided::ClflushSingleSided(mem::MemorySystem &mem, Pid pid,
                                       const SingleSidedTarget &target)
    : Hammer(mem, pid),
      aggressor_(target.aggressor_va),
      closer_(target.closer_va)
{
}

void
ClflushSingleSided::iteration()
{
    // The far same-bank access forces the aggressor's row closed so the
    // next iteration re-activates it.
    mem_.access(pid_, aggressor_, AccessType::kLoad);
    mem_.access(pid_, closer_, AccessType::kLoad);
    mem_.clflush(pid_, aggressor_);
    mem_.clflush(pid_, closer_);
}

bool
ClflushFreeDoubleSided::slice_compatible(const mem::MemorySystem &mem,
                                         Pid pid,
                                         const DoubleSidedTarget &target)
{
    const mem::AddressSpace &space = mem.process(pid);
    const Addr pa0 = space.translate(target.low_aggressor_va);
    const Addr pa1 = space.translate(target.high_aggressor_va);
    if (pa0 == kInvalidAddr || pa1 == kInvalidAddr)
        return false;
    // Equal column placement requires the two pages to sit in the same
    // half of their 8 KB rows (page-offset bit 12 of the physical
    // address), and the slice hash over the differing row bits must agree.
    if (((pa0 >> 12) & 1) != ((pa1 >> 12) & 1))
        return false;
    const auto &hierarchy = mem.hierarchy();
    return hierarchy.llc_slice(pa0) == hierarchy.llc_slice(pa1) &&
           hierarchy.llc_set(pa0) == hierarchy.llc_set(pa1);
}

ClflushFreeDoubleSided::ClflushFreeDoubleSided(mem::MemorySystem &mem,
                                               Pid pid,
                                               const DoubleSidedTarget &target,
                                               const MemoryLayout &layout)
    : Hammer(mem, pid),
      a0_(target.low_aggressor_va),
      a1_(target.high_aggressor_va)
{
    if (!slice_compatible(mem, pid, target)) {
        throw std::runtime_error(
            "target aggressors cannot share an LLC set/slice");
    }
    // 11 conflicts + the two aggressors = 13 lines contending for the
    // 12-way set, the same set pressure as the paper's 13-address
    // eviction set.
    touches_ = layout.build_eviction_set(a0_, 11);
}

void
ClflushFreeDoubleSided::iteration()
{
    // Steady state: a0 and a1 alternate in a single way of the set. Each
    // access of one evicts the other; the 11 touches between them re-set
    // the remaining ways' MRU bits, forcing the Bit-PLRU global reset
    // that exposes the aggressors' way as the next victim.
    mem_.access(pid_, a0_, AccessType::kLoad);
    for (const Addr t : touches_)
        mem_.access(pid_, t, AccessType::kLoad);
    mem_.access(pid_, a1_, AccessType::kLoad);
    for (const Addr t : touches_)
        mem_.access(pid_, t, AccessType::kLoad);
}

ClflushHalfDouble::ClflushHalfDouble(mem::MemorySystem &mem, Pid pid,
                                     const HalfDoubleTarget &target,
                                     std::uint64_t near_touch_interval)
    : Hammer(mem, pid),
      far_low_(target.far_low_va),
      far_high_(target.far_high_va),
      near_low_(target.near_low_va),
      near_high_(target.near_high_va),
      near_touch_interval_(near_touch_interval)
{
    if (near_touch_interval_ == 0)
        throw std::runtime_error("near_touch_interval must be nonzero");
}

void
ClflushHalfDouble::iteration()
{
    // Hammer only the distance-2 aggressors; the victim v between the
    // near rows accrues second-neighbour disturbance from both.
    mem_.access(pid_, far_low_, AccessType::kLoad);
    mem_.access(pid_, far_high_, AccessType::kLoad);
    mem_.clflush(pid_, far_low_);
    mem_.clflush(pid_, far_high_);
    if (++iterations_ % near_touch_interval_ == 0) {
        // Rare touch of the near rows restores THEIR charge (so the
        // attack's collateral disturbance never flips v±1 first) while
        // keeping their activation counts orders of magnitude below any
        // MAC a tracker would act on.
        mem_.access(pid_, near_low_, AccessType::kLoad);
        mem_.access(pid_, near_high_, AccessType::kLoad);
        mem_.clflush(pid_, near_low_);
        mem_.clflush(pid_, near_high_);
    }
}

TrackerThrash::TrackerThrash(mem::MemorySystem &mem, Pid pid,
                             std::vector<Addr> rows)
    : Hammer(mem, pid), rows_(std::move(rows))
{
    if (rows_.empty())
        throw std::runtime_error("tracker thrash needs a non-empty row set");
}

void
TrackerThrash::iteration()
{
    // Every iteration activates a DIFFERENT row: maximal unique-row
    // pressure on tracker tables, negligible disturbance per victim.
    const Addr va = rows_[index_];
    index_ = (index_ + 1) % rows_.size();
    mem_.access(pid_, va, AccessType::kLoad);
    mem_.clflush(pid_, va);
}

}  // namespace anvil::attack
