#include "attack/hammer.hh"

#include <stdexcept>

namespace anvil::attack {

Hammer::Hammer(mem::MemorySystem &mem, Pid pid) : mem_(mem), pid_(pid)
{
}

HammerResult
Hammer::run(Tick max_duration)
{
    const dram::DramSystem &dram = mem_.dram();
    const std::size_t base_flips = dram.flips().size();
    const Tick start = mem_.now();

    HammerResult result;
    while (mem_.now() - start < max_duration) {
        iteration();
        ++result.iterations;
        if (dram.flips().size() > base_flips) {
            result.flipped = true;
            break;
        }
    }

    result.aggressor_accesses =
        result.iterations * aggressor_accesses_per_iteration();
    if (result.flipped) {
        result.duration = dram.flips()[base_flips].time - start;
        result.flips.assign(dram.flips().begin() +
                                static_cast<std::ptrdiff_t>(base_flips),
                            dram.flips().end());
    } else {
        result.duration = mem_.now() - start;
    }
    return result;
}

ClflushDoubleSided::ClflushDoubleSided(mem::MemorySystem &mem, Pid pid,
                                       const DoubleSidedTarget &target,
                                       AccessType type)
    : Hammer(mem, pid),
      a0_(target.low_aggressor_va),
      a1_(target.high_aggressor_va),
      type_(type)
{
}

void
ClflushDoubleSided::iteration()
{
    // Figure 1a: access both aggressors, then flush both so the next
    // iteration's accesses reach DRAM.
    mem_.access(pid_, a0_, type_);
    mem_.access(pid_, a1_, type_);
    mem_.clflush(pid_, a0_);
    mem_.clflush(pid_, a1_);
}

ClflushSingleSided::ClflushSingleSided(mem::MemorySystem &mem, Pid pid,
                                       const SingleSidedTarget &target)
    : Hammer(mem, pid),
      aggressor_(target.aggressor_va),
      closer_(target.closer_va)
{
}

void
ClflushSingleSided::iteration()
{
    // The far same-bank access forces the aggressor's row closed so the
    // next iteration re-activates it.
    mem_.access(pid_, aggressor_, AccessType::kLoad);
    mem_.access(pid_, closer_, AccessType::kLoad);
    mem_.clflush(pid_, aggressor_);
    mem_.clflush(pid_, closer_);
}

bool
ClflushFreeDoubleSided::slice_compatible(const mem::MemorySystem &mem,
                                         Pid pid,
                                         const DoubleSidedTarget &target)
{
    const mem::AddressSpace &space = mem.process(pid);
    const Addr pa0 = space.translate(target.low_aggressor_va);
    const Addr pa1 = space.translate(target.high_aggressor_va);
    if (pa0 == kInvalidAddr || pa1 == kInvalidAddr)
        return false;
    // Equal column placement requires the two pages to sit in the same
    // half of their 8 KB rows (page-offset bit 12 of the physical
    // address), and the slice hash over the differing row bits must agree.
    if (((pa0 >> 12) & 1) != ((pa1 >> 12) & 1))
        return false;
    const auto &hierarchy = mem.hierarchy();
    return hierarchy.llc_slice(pa0) == hierarchy.llc_slice(pa1) &&
           hierarchy.llc_set(pa0) == hierarchy.llc_set(pa1);
}

ClflushFreeDoubleSided::ClflushFreeDoubleSided(mem::MemorySystem &mem,
                                               Pid pid,
                                               const DoubleSidedTarget &target,
                                               const MemoryLayout &layout)
    : Hammer(mem, pid),
      a0_(target.low_aggressor_va),
      a1_(target.high_aggressor_va)
{
    if (!slice_compatible(mem, pid, target)) {
        throw std::runtime_error(
            "target aggressors cannot share an LLC set/slice");
    }
    // 11 conflicts + the two aggressors = 13 lines contending for the
    // 12-way set, the same set pressure as the paper's 13-address
    // eviction set.
    touches_ = layout.build_eviction_set(a0_, 11);
}

void
ClflushFreeDoubleSided::iteration()
{
    // Steady state: a0 and a1 alternate in a single way of the set. Each
    // access of one evicts the other; the 11 touches between them re-set
    // the remaining ways' MRU bits, forcing the Bit-PLRU global reset
    // that exposes the aggressors' way as the next victim.
    mem_.access(pid_, a0_, AccessType::kLoad);
    for (const Addr t : touches_)
        mem_.access(pid_, t, AccessType::kLoad);
    mem_.access(pid_, a1_, AccessType::kLoad);
    for (const Addr t : touches_)
        mem_.access(pid_, t, AccessType::kLoad);
}

}  // namespace anvil::attack
