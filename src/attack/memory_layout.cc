#include "attack/memory_layout.hh"

#include <cstdlib>
#include <stdexcept>

namespace anvil::attack {

MemoryLayout::MemoryLayout(const mem::AddressSpace &space,
                           const dram::AddressMap &dram_map,
                           const cache::CacheHierarchy &hierarchy)
    : space_(space), dram_map_(dram_map), hierarchy_(hierarchy)
{
}

void
MemoryLayout::scan(Addr va_base, std::uint64_t bytes)
{
    for (Addr va = va_base; va < va_base + bytes; va += mem::kPageBytes) {
        const Addr frame = space_.pagemap(va);
        if (frame == kInvalidAddr)
            continue;
        const dram::DramCoord coord = dram_map_.decode(frame);
        const std::uint32_t fb = dram_map_.flat_bank(coord);
        rows_.emplace(std::make_pair(fb, coord.row), va);
        page_vas_.push_back(va);
        ++page_count_;
    }
}

std::vector<DoubleSidedTarget>
MemoryLayout::find_double_sided_targets(std::size_t max_targets) const
{
    std::vector<DoubleSidedTarget> targets;
    for (const auto &[key, va] : rows_) {
        if (targets.size() >= max_targets)
            break;
        const auto [bank, row] = key;
        // va is in row `row`; check for an owned page two rows up, which
        // sandwiches victim row `row + 1`.
        auto high = rows_.find({bank, row + 2});
        if (high == rows_.end())
            continue;
        targets.push_back(DoubleSidedTarget{va, high->second, bank,
                                            row + 1});
    }
    return targets;
}

std::vector<SingleSidedTarget>
MemoryLayout::find_single_sided_targets(std::size_t max_targets,
                                        std::uint32_t min_row_gap) const
{
    std::vector<SingleSidedTarget> targets;
    for (const auto &[key, va] : rows_) {
        if (targets.size() >= max_targets)
            break;
        const auto [bank, row] = key;
        // Find any owned row in the same bank far enough away to act as
        // the row-closer.
        for (auto it = rows_.lower_bound({bank, row + min_row_gap});
             it != rows_.end() && it->first.first == bank; ++it) {
            targets.push_back(SingleSidedTarget{va, it->second, bank, row});
            break;
        }
    }
    return targets;
}

std::vector<HalfDoubleTarget>
MemoryLayout::find_half_double_targets(std::size_t max_targets) const
{
    std::vector<HalfDoubleTarget> targets;
    for (const auto &[key, va] : rows_) {
        if (targets.size() >= max_targets)
            break;
        const auto [bank, row] = key;
        // va is in row `row` = v-2; the sandwich needs v-1, v+1, v+2
        // owned too (v itself need not be — the victim is someone
        // else's data, which is the point of the attack).
        auto near_low = rows_.find({bank, row + 1});
        auto near_high = rows_.find({bank, row + 3});
        auto far_high = rows_.find({bank, row + 4});
        if (near_low == rows_.end() || near_high == rows_.end() ||
            far_high == rows_.end())
            continue;
        targets.push_back(HalfDoubleTarget{va, near_low->second,
                                           near_high->second,
                                           far_high->second, bank,
                                           row + 2});
    }
    return targets;
}

std::vector<Addr>
MemoryLayout::find_thrash_rows(std::size_t max_rows,
                               std::uint32_t min_row_gap) const
{
    std::vector<Addr> rows;
    bool have_last = false;
    std::uint32_t last_bank = 0;
    std::uint32_t last_row = 0;
    for (const auto &[key, va] : rows_) {
        if (rows.size() >= max_rows)
            break;
        const auto [bank, row] = key;
        // Spacing keeps picked rows out of each other's blast radius:
        // the thrash traffic stresses tracker tables, not DRAM cells.
        if (have_last && bank == last_bank && row < last_row + min_row_gap)
            continue;
        rows.push_back(va);
        have_last = true;
        last_bank = bank;
        last_row = row;
    }
    return rows;
}

std::vector<Addr>
MemoryLayout::build_eviction_set(Addr target_va,
                                 std::size_t n_conflicts) const
{
    const Addr target_pa = space_.translate(target_va);
    if (target_pa == kInvalidAddr)
        throw std::runtime_error("eviction target is unmapped");
    const std::uint32_t want_set = hierarchy_.llc_set(target_pa);
    const std::uint32_t want_slice = hierarchy_.llc_slice(target_pa);
    const std::uint32_t target_row = dram_map_.decode(target_pa).row;
    const std::uint32_t target_bank =
        dram_map_.flat_bank(dram_map_.decode(target_pa));

    std::vector<Addr> conflicts;
    for (const Addr page_va : page_vas_) {
        if (conflicts.size() >= n_conflicts)
            break;
        const Addr frame = space_.pagemap(page_va);
        // Only LLC-set-index bits below the page offset vary within a
        // page, so check each line of the page.
        for (std::uint32_t off = 0; off < mem::kPageBytes;
             off += cache::kLineBytes) {
            const Addr pa = frame + off;
            if (cache::line_of(pa) == cache::line_of(target_pa))
                continue;
            if (hierarchy_.llc_set(pa) != want_set ||
                hierarchy_.llc_slice(pa) != want_slice) {
                continue;
            }
            // Skip conflicts living near the target's DRAM row so the
            // eviction traffic itself cannot disturb the intended victim.
            const dram::DramCoord coord = dram_map_.decode(pa);
            if (dram_map_.flat_bank(coord) == target_bank &&
                coord.row + 4 >= target_row && coord.row <= target_row + 4) {
                continue;
            }
            conflicts.push_back(page_va + off);
            if (conflicts.size() >= n_conflicts)
                break;
        }
    }
    if (conflicts.size() < n_conflicts) {
        throw std::runtime_error(
            "buffer too small to build eviction set: found " +
            std::to_string(conflicts.size()) + " of " +
            std::to_string(n_conflicts));
    }
    return conflicts;
}

}  // namespace anvil::attack
