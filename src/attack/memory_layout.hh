/**
 * @file
 * The attacker's view of physical memory.
 *
 * Mirrors the published rowhammer attack implementations (paper Section
 * 2.3): the attacker mmaps a large buffer, uses /proc/pagemap to learn the
 * physical frame of every page, and from the reverse-engineered DRAM and
 * LLC mappings derives (a) aggressor/victim row triples for double-sided
 * hammering and (b) LLC eviction sets (same set, same slice) for the
 * CLFLUSH-free attack.
 */
#ifndef ANVIL_ATTACK_MEMORY_LAYOUT_HH
#define ANVIL_ATTACK_MEMORY_LAYOUT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "mem/virtual_memory.hh"

namespace anvil::attack {

/** Aggressor pair sandwiching one victim row (double-sided hammering). */
struct DoubleSidedTarget {
    Addr low_aggressor_va = 0;   ///< VA mapping into row victim-1
    Addr high_aggressor_va = 0;  ///< VA mapping into row victim+1
    std::uint32_t flat_bank = 0;
    std::uint32_t victim_row = 0;
};

/** Aggressor plus a same-bank "row closer" (single-sided hammering). */
struct SingleSidedTarget {
    Addr aggressor_va = 0;
    Addr closer_va = 0;  ///< far row in the same bank, forces row close
    std::uint32_t flat_bank = 0;
    std::uint32_t aggressor_row = 0;
};

/**
 * Half-double layout around victim row v: the hammered aggressors sit at
 * DISTANCE 2 (rows v-2 and v+2), while the directly adjacent rows v-1
 * and v+1 are only touched occasionally — enough to keep their own
 * charge restored (and their activation counts under any tracker's MAC)
 * while the victim accumulates pure second-neighbour disturbance that
 * aggressor-centric trackers never attribute to it.
 */
struct HalfDoubleTarget {
    Addr far_low_va = 0;    ///< VA mapping into row v-2 (hammered)
    Addr near_low_va = 0;   ///< VA mapping into row v-1 (kept charged)
    Addr near_high_va = 0;  ///< VA mapping into row v+1 (kept charged)
    Addr far_high_va = 0;   ///< VA mapping into row v+2 (hammered)
    std::uint32_t flat_bank = 0;
    std::uint32_t victim_row = 0;
};

/**
 * Scans an attacker-owned buffer through pagemap and answers layout
 * queries. All knowledge used here is exactly what the paper's attacker
 * has: pagemap plus the reverse-engineered address mappings.
 */
class MemoryLayout
{
  public:
    MemoryLayout(const mem::AddressSpace &space,
                 const dram::AddressMap &dram_map,
                 const cache::CacheHierarchy &hierarchy);

    /** Indexes the pages of [va_base, va_base + bytes). */
    void scan(Addr va_base, std::uint64_t bytes);

    /**
     * Finds rows r such that the attacker owns pages in both r-1 and r+1
     * of the same bank, ordered by (bank, row).
     */
    std::vector<DoubleSidedTarget>
    find_double_sided_targets(std::size_t max_targets) const;

    /**
     * Finds aggressor rows paired with a same-bank closer row at least
     * @p min_row_gap rows away (so the closer never disturbs the
     * aggressor's victims).
     */
    std::vector<SingleSidedTarget>
    find_single_sided_targets(std::size_t max_targets,
                              std::uint32_t min_row_gap = 64) const;

    /**
     * Finds victims v such that the attacker owns pages in all four of
     * rows v-2, v-1, v+1, v+2 of the same bank (the half-double
     * sandwich), ordered by (bank, row).
     */
    std::vector<HalfDoubleTarget>
    find_half_double_targets(std::size_t max_targets) const;

    /**
     * Enumerates up to @p max_rows attacker VAs in DISTINCT (bank, row)
     * locations, keeping same-bank picks at least @p min_row_gap rows
     * apart so round-robin traffic over them exerts maximal unique-row
     * pressure on a tracker's tables while contributing near-zero
     * disturbance to any single victim (the tracker-thrash working set).
     */
    std::vector<Addr> find_thrash_rows(std::size_t max_rows,
                                       std::uint32_t min_row_gap = 3) const;

    /**
     * Builds an LLC eviction set for @p target_va: @p n_conflicts
     * attacker-owned line addresses that map to the same LLC set and slice
     * as the target but are different cache lines (and different DRAM
     * rows, so the conflicts never hammer the target's neighbourhood).
     *
     * @throw std::runtime_error if the scanned buffer is too small to
     *        supply enough conflicts.
     */
    std::vector<Addr> build_eviction_set(Addr target_va,
                                         std::size_t n_conflicts) const;

    /** Number of pages indexed by scan(). */
    std::size_t pages_scanned() const { return page_count_; }

  private:
    const mem::AddressSpace &space_;
    const dram::AddressMap &dram_map_;
    const cache::CacheHierarchy &hierarchy_;

    /// (flat_bank, row) -> one attacker VA whose page starts in that row.
    std::map<std::pair<std::uint32_t, std::uint32_t>, Addr> rows_;
    std::vector<Addr> page_vas_;  ///< all scanned page base VAs
    std::size_t page_count_ = 0;
};

}  // namespace anvil::attack

#endif  // ANVIL_ATTACK_MEMORY_LAYOUT_HH
