/**
 * @file
 * Rowhammer attack kernels (paper Section 2).
 *
 * Three attacks are implemented, matching Table 1:
 *
 *  - single-sided with CLFLUSH: hammer one aggressor, using a far same-bank
 *    "closer" row to force the row buffer shut each iteration;
 *  - double-sided with CLFLUSH: hammer the two rows sandwiching a victim
 *    (Figure 1a);
 *  - double-sided WITHOUT CLFLUSH: evict the aggressors from the LLC every
 *    iteration purely by manipulating the Bit-PLRU replacement state with
 *    an eviction set (Figure 1b).
 *
 * CLFLUSH-free pattern note. The paper's Figure 1b drives each aggressor
 * to the LRU position with ~10 conflicting accesses and evicts it with one
 * additional miss per aggressor. Under Bit-PLRU the minimal steady-state
 * cycle per set is
 *
 *     [ M, T1..T11, M', T1..T11, ... ]
 *
 * where M and M' alternate in one way (both always missing) and the 11
 * touches re-set the other ways' MRU bits, forcing the global MRU reset
 * that exposes the M/M' way as the victim. We additionally place BOTH
 * aggressors in the same LLC set (possible because the attacker controls
 * the column bits within each aggressor row), so each aggressor acts as
 * the other's evictor: every LLC miss of the pattern is an aggressor-row
 * activation. This reproduces the paper's measured per-activation cost
 * (~200 ns) and its claim of ~190 K hammers per 64 ms refresh interval.
 */
#ifndef ANVIL_ATTACK_HAMMER_HH
#define ANVIL_ATTACK_HAMMER_HH

#include <cstdint>
#include <vector>

#include "attack/memory_layout.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"
#include "mem/memory_system.hh"

namespace anvil::attack {

/** Outcome of one hammering run. */
struct HammerResult {
    bool flipped = false;
    /// Accesses that reached the aggressor DRAM rows (Table 1's
    /// "Number of DRAM Row Accesses").
    std::uint64_t aggressor_accesses = 0;
    /// Simulated time from hammer start until the first flip (or until
    /// the deadline if none occurred).
    Tick duration = 0;
    std::uint64_t iterations = 0;
    std::vector<dram::FlipEvent> flips;
};

/**
 * Base class driving the iterate-until-flip loop shared by all attacks.
 */
class Hammer
{
  public:
    Hammer(mem::MemorySystem &mem, Pid pid);
    virtual ~Hammer() = default;

    /**
     * Hammers until the DRAM records a new bit flip or @p max_duration of
     * simulated time elapses.
     */
    HammerResult run(Tick max_duration);

    /** Attack name for reports. */
    virtual const char *name() const = 0;

    /**
     * Performs one iteration of the access pattern — for interleaving the
     * attack with other drivers (heavy-load experiments, Table 3).
     */
    void step() { iteration(); }

  protected:
    /** One iteration of the attack's access pattern. */
    virtual void iteration() = 0;

    /** Aggressor-row accesses performed per iteration. */
    virtual std::uint64_t aggressor_accesses_per_iteration() const = 0;

    mem::MemorySystem &mem_;
    Pid pid_;
};

/** Double-sided rowhammer using CLFLUSH (Figure 1a). */
class ClflushDoubleSided : public Hammer
{
  public:
    /**
     * @param type hammer with loads (default) or stores. Store-based
     *        hammering is why ANVIL samples stores through the Precise
     *        Store facility (Section 3.3) — a loads-only detector would
     *        be blind to it.
     */
    ClflushDoubleSided(mem::MemorySystem &mem, Pid pid,
                       const DoubleSidedTarget &target,
                       AccessType type = AccessType::kLoad);

    const char *name() const override { return "double-sided CLFLUSH"; }

  protected:
    void iteration() override;
    std::uint64_t aggressor_accesses_per_iteration() const override
    {
        return 2;
    }

  private:
    Addr a0_;
    Addr a1_;
    AccessType type_;
};

/** Single-sided rowhammer using CLFLUSH. */
class ClflushSingleSided : public Hammer
{
  public:
    ClflushSingleSided(mem::MemorySystem &mem, Pid pid,
                       const SingleSidedTarget &target);

    const char *name() const override { return "single-sided CLFLUSH"; }

  protected:
    void iteration() override;
    /// Only aggressor-row accesses count; the same-bank closer access is
    /// pattern overhead, consistent with Table 1's 400 K.
    std::uint64_t aggressor_accesses_per_iteration() const override
    {
        return 1;
    }

  private:
    Addr aggressor_;
    Addr closer_;
};

/** Double-sided rowhammer WITHOUT CLFLUSH (Figure 1b; Section 2.2). */
class ClflushFreeDoubleSided : public Hammer
{
  public:
    /**
     * Prepares the eviction machinery for @p target.
     *
     * @param layout the attacker's scanned memory layout, used to pick
     *        column offsets placing both aggressors in one LLC set and to
     *        build the conflict (touch) set.
     * @throw std::runtime_error if the target's aggressors cannot share
     *        an LLC slice (see find_target) or conflicts are scarce.
     */
    ClflushFreeDoubleSided(mem::MemorySystem &mem, Pid pid,
                           const DoubleSidedTarget &target,
                           const MemoryLayout &layout);

    const char *name() const override { return "double-sided CLFLUSH-free"; }

    /**
     * True if @p target admits the shared-set placement (the two
     * aggressor rows hash to the same LLC slice for equal column bits).
     */
    static bool slice_compatible(const mem::MemorySystem &mem, Pid pid,
                                 const DoubleSidedTarget &target);

    /** The conflict addresses in use (for tests). */
    const std::vector<Addr> &touch_set() const { return touches_; }

    Addr a0() const { return a0_; }
    Addr a1() const { return a1_; }

  protected:
    void iteration() override;
    std::uint64_t aggressor_accesses_per_iteration() const override
    {
        return 2;
    }

  private:
    Addr a0_;
    Addr a1_;
    std::vector<Addr> touches_;  ///< the 11 MRU-refresh lines
};

/**
 * Half-double rowhammer (aggressor-at-distance-2).
 *
 * The hammered rows are v±2; the directly adjacent rows v±1 are touched
 * only once every `near_touch_interval` iterations. Those rare touches
 * keep the near rows' own charge restored (so THEY never flip and expose
 * the attack early) while staying far under any tracker's MAC — the
 * victim v accumulates pure second-neighbour disturbance that an
 * aggressor-centric tracker attributes to rows v±1 and v±3, never to v.
 * Requires a module with a nonzero second_neighbor_weight (next-gen
 * parts); on a strictly first-order module the pattern is harmless.
 */
class ClflushHalfDouble : public Hammer
{
  public:
    ClflushHalfDouble(mem::MemorySystem &mem, Pid pid,
                      const HalfDoubleTarget &target,
                      std::uint64_t near_touch_interval = 512);

    const char *name() const override { return "half-double CLFLUSH"; }

  protected:
    void iteration() override;
    /// Only the far (distance-2) rows are hammered; the rare near-row
    /// touches are pattern overhead.
    std::uint64_t aggressor_accesses_per_iteration() const override
    {
        return 2;
    }

  private:
    Addr far_low_;
    Addr far_high_;
    Addr near_low_;
    Addr near_high_;
    std::uint64_t near_touch_interval_;
    std::uint64_t iterations_ = 0;
};

/**
 * Tracker-thrash adversary: a performance attack on the TRACKER, not on
 * DRAM. Round-robins CLFLUSH+load over a large set of distinct rows so
 * every access is a row activation of a different row — no row ever
 * approaches a hammering rate, so no bit can flip, but every activation
 * is a fresh candidate for the tracker's finite tables. Trackers whose
 * eviction path issues refreshes (or whose response is unbudgeted)
 * convert this benign-looking traffic into a refresh storm that slows
 * co-running workloads; resilient trackers bound the damage.
 */
class TrackerThrash : public Hammer
{
  public:
    /**
     * @param rows attacker VAs in distinct (bank, row) locations (see
     *        MemoryLayout::find_thrash_rows). Must be non-empty.
     */
    TrackerThrash(mem::MemorySystem &mem, Pid pid, std::vector<Addr> rows);

    const char *name() const override { return "tracker thrash"; }

    std::size_t working_set_rows() const { return rows_.size(); }

  protected:
    void iteration() override;
    std::uint64_t aggressor_accesses_per_iteration() const override
    {
        return 1;
    }

  private:
    std::vector<Addr> rows_;
    std::size_t index_ = 0;
};

}  // namespace anvil::attack

#endif  // ANVIL_ATTACK_HAMMER_HH
