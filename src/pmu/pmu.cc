#include "pmu/pmu.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace anvil::pmu {

void
HwCounter::arm_overflow(std::uint64_t threshold,
                        std::function<void()> handler)
{
    assert(threshold > 0);
    value_ = 0;
    threshold_ = threshold;
    handler_ = std::move(handler);
    armed_ = true;
}

void
HwCounter::disarm()
{
    armed_ = false;
    handler_ = nullptr;
}

void
HwCounter::tick()
{
    ++value_;
    if (armed_ && value_ >= threshold_) {
        armed_ = false;
        // Take the handler out first: the PMI handler may re-arm.
        auto handler = std::move(handler_);
        handler_ = nullptr;
        if (handler)
            handler();
    }
}

Pmu::Pmu(mem::MemorySystem &mem, std::uint64_t seed)
    : mem_(mem), rng_(seed)
{
    mem_.set_access_listener(this);
}

Pmu::~Pmu()
{
    mem_.set_access_listener(nullptr);
}

HwCounter &
Pmu::counter(Event event)
{
    return counters_[static_cast<std::size_t>(event)];
}

const HwCounter &
Pmu::counter(Event event) const
{
    return counters_[static_cast<std::size_t>(event)];
}

std::uint64_t
Pmu::llc_misses(Pid pid) const
{
    return pid < pid_llc_misses_.size() ? pid_llc_misses_[pid] : 0;
}

void
Pmu::enable_sampling(const SampleConfig &config)
{
    sample_config_ = config;
    sampling_enabled_ = true;
    sampling_started_ = mem_.now();
    qualifying_events_ = 0;
    // Let a few events accumulate before the first record so the
    // event-rate estimate has something to chew on.
    next_sample_at_ = 16;
    records_.reserve(64);
}

void
Pmu::disable_sampling()
{
    sampling_enabled_ = false;
}

std::vector<PebsRecord>
Pmu::drain_samples()
{
    return std::exchange(records_, {});
}

void
Pmu::drain_samples(std::vector<PebsRecord> &out)
{
    out.clear();
    std::swap(out, records_);
}

void
Pmu::schedule_next_sample(Tick now)
{
    // PEBS samples every Nth qualifying event (unbiased across
    // operations). N is adapted to the observed qualifying-event rate so
    // the wall-clock sample rate tracks 1/mean_period, with uniform
    // jitter in [0.5, 1.5) N to decorrelate from periodic patterns
    // (hardware randomizes the reload value similarly).
    // Floor the window at 1 us: sampling is often enabled from a PMI in
    // the middle of the access stream, and a zero-length window would
    // make the rate estimate explode.
    const Tick elapsed = std::max<Tick>(now - sampling_started_, us(1));
    const double event_rate = static_cast<double>(qualifying_events_) /
                              static_cast<double>(elapsed);
    const double n_target = std::max(
        1.0, event_rate * static_cast<double>(sample_config_.mean_period));
    const double jitter = 0.5 + rng_.next_double();
    next_sample_at_ =
        qualifying_events_ +
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(n_target * jitter + 0.5));
}

void
Pmu::on_access(const mem::AccessInfo &info)
{
    // Event counters.
    if (info.llc_miss) {
        // Attribute before ticking: the kLlcMisses tick may fire the
        // Stage-1 PMI, and the handler should see this miss included in
        // its owner's total.
        if (info.pid >= pid_llc_misses_.size())
            pid_llc_misses_.resize(info.pid + 1, 0);
        ++pid_llc_misses_[info.pid];
        counter(Event::kLlcMisses).tick();
        if (info.type == AccessType::kLoad)
            counter(Event::kLlcLoadMisses).tick();
        else
            counter(Event::kLlcStoreMisses).tick();
    }
    if (info.type == AccessType::kLoad)
        counter(Event::kLoadsRetired).tick();
    else
        counter(Event::kStoresRetired).tick();

    // PEBS sampling.
    if (!sampling_enabled_)
        return;

    const bool load_ok = sample_config_.sample_loads &&
                         info.type == AccessType::kLoad &&
                         info.latency >=
                             sample_config_.load_latency_threshold;
    const bool store_ok = sample_config_.sample_stores &&
                          info.type == AccessType::kStore &&
                          info.llc_miss;
    if (!load_ok && !store_ok)
        return;

    ++qualifying_events_;
    if (qualifying_events_ < next_sample_at_)
        return;

    records_.push_back(PebsRecord{info.pid, info.va, info.type, info.source,
                                  info.latency, info.complete_time});
    schedule_next_sample(info.complete_time);
}

}  // namespace anvil::pmu
