/**
 * @file
 * Simulated hardware performance-monitoring unit.
 *
 * Models the Intel facilities ANVIL is built on (paper Section 3.3):
 *
 *  - programmable event counters with an overflow interrupt, used for
 *    LONGEST_LAT_CACHE.MISS ("generates an interrupt after N misses");
 *  - the PEBS Load Latency facility: loads are sampled probabilistically;
 *    a sampled load whose latency exceeds a programmable threshold is
 *    recorded with its virtual address and data source;
 *  - the Precise Store facility: sampled stores recorded with virtual
 *    address and data source.
 *
 * The PMU observes completed accesses from the memory system exactly the
 * way the hardware observes the memory pipeline; the detector reads
 * counters and drains sample buffers, never the memory system directly.
 */
#ifndef ANVIL_PMU_PMU_HH
#define ANVIL_PMU_PMU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/memory_system.hh"

namespace anvil::pmu {

/** Countable architectural events. */
enum class Event : std::uint8_t {
    kLlcMisses = 0,      ///< LONGEST_LAT_CACHE.MISS
    kLlcLoadMisses,      ///< MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS
    kLlcStoreMisses,     ///< store misses out of the LLC
    kLoadsRetired,
    kStoresRetired,
    kEventCount,
};

inline constexpr std::size_t kNumEvents =
    static_cast<std::size_t>(Event::kEventCount);

/**
 * One programmable counter with an optional overflow interrupt.
 *
 * The overflow callback fires (once) when the count reaches the armed
 * threshold; re-arm for the next window, as ANVIL's Stage-1 does.
 */
class HwCounter
{
  public:
    /** Current count since the last reset. */
    std::uint64_t value() const { return value_; }

    /** Resets the count (does not disturb an armed overflow). */
    void reset() { value_ = 0; }

    /**
     * Arms an interrupt that fires when value() reaches @p threshold
     * counts *from now* (the counter is reset).
     */
    void arm_overflow(std::uint64_t threshold,
                      std::function<void()> handler);

    /** Disarms any pending overflow interrupt. */
    void disarm();

    /** True if an overflow is armed and has not fired yet. */
    bool armed() const { return armed_; }

    /** Called by the PMU when the event occurs. */
    void tick();

  private:
    std::uint64_t value_ = 0;
    std::uint64_t threshold_ = 0;
    std::function<void()> handler_;
    bool armed_ = false;
};

/** One PEBS record (debug-store entry). */
struct PebsRecord {
    Pid pid = 0;
    Addr va = 0;
    AccessType type = AccessType::kLoad;
    DataSource source = DataSource::kL1;
    Tick latency = 0;
    Tick time = 0;
};

/** Configuration of the sampling facilities. */
struct SampleConfig {
    /// Mean interval between samples. The paper uses 5000 samples/second
    /// (=> ~30 samples per 6 ms window). PEBS hardware counts qualifying
    /// events and arms a record every Nth one; the sampler adapts N to
    /// the observed event rate so the wall-clock rate matches this period
    /// while remaining unbiased across qualifying operations.
    Tick mean_period = us(200);
    /// Load-latency qualification threshold: only loads at least this slow
    /// are eligible. ANVIL sets it to the LLC miss latency so only loads
    /// served by DRAM qualify.
    Tick load_latency_threshold = 0;
    bool sample_loads = true;
    bool sample_stores = false;
};

/** The PMU. One per simulated core. */
class Pmu : public mem::AccessListener
{
  public:
    /**
     * Constructs and subscribes to @p mem's access stream as its direct
     * access listener (no per-access std::function indirection).
     */
    explicit Pmu(mem::MemorySystem &mem, std::uint64_t seed = 0x9EB5ULL);
    ~Pmu() override;

    Pmu(const Pmu &) = delete;
    Pmu &operator=(const Pmu &) = delete;

    /** Access to a counter by event. */
    HwCounter &counter(Event event);
    const HwCounter &counter(Event event) const;

    /**
     * Per-process LLC-miss attribution — the multiplexed counter view a
     * system-wide daemon uses to rank tenants. Hardware time-multiplexes
     * one counter across contexts; the model keeps the per-pid totals the
     * multiplexing estimates. Returns 0 for a pid never observed.
     */
    std::uint64_t llc_misses(Pid pid) const;

    /** Per-pid LLC-miss totals, indexed by pid (short pids unobserved). */
    const std::vector<std::uint64_t> &
    llc_misses_by_pid() const
    {
        return pid_llc_misses_;
    }

    /** Enables PEBS sampling with @p config (replaces prior config). */
    void enable_sampling(const SampleConfig &config);

    /** Disables sampling; pending records remain until drained. */
    void disable_sampling();

    bool sampling_enabled() const { return sampling_enabled_; }

    /** Takes all accumulated PEBS records. */
    std::vector<PebsRecord> drain_samples();

    /**
     * Takes all accumulated PEBS records into @p out (cleared first) by
     * swapping buffers — the steady-state path allocates nothing once both
     * vectors have grown to the high-water mark.
     */
    void drain_samples(std::vector<PebsRecord> &out);

    /** Drops all accumulated records, keeping the buffer's capacity. */
    void discard_samples() { records_.clear(); }

    /** Number of records accumulated (without draining). */
    std::size_t pending_samples() const { return records_.size(); }

    /** mem::AccessListener: called by the memory system on every access. */
    void on_access(const mem::AccessInfo &info) override;

  private:
    void schedule_next_sample(Tick now);

    mem::MemorySystem &mem_;
    Rng rng_;
    std::array<HwCounter, kNumEvents> counters_;
    std::vector<std::uint64_t> pid_llc_misses_;  ///< grown on first miss
    SampleConfig sample_config_;
    bool sampling_enabled_ = false;
    Tick sampling_started_ = 0;       ///< when sampling was (re)enabled
    std::uint64_t qualifying_events_ = 0;  ///< since sampling enabled
    std::uint64_t next_sample_at_ = 0;     ///< event count of next record
    std::vector<PebsRecord> records_;
};

}  // namespace anvil::pmu

#endif  // ANVIL_PMU_PMU_HH
